//! `netperf` — command-line driver for the flit-level simulator.
//!
//! Three subcommands over the scenario plane:
//!
//! ```sh
//! netperf list                              # named scenarios from the registry
//! netperf run cube-duato --load 0.6         # one load point of a registry entry
//! netperf sweep tree-2vc --pattern transpose --csv sweep.csv
//! netperf run --topology mesh --k 8 --n 2 --algo adaptive --vcs 2 --load 0.3
//! ```
//!
//! `run` and `sweep` accept either a registry name or explicit
//! `--topology/--k/--n/--algo/--vcs` flags; every axis goes through the
//! validating [`ScenarioBuilder`], so an impossible combination fails
//! with a message instead of a panic. When `--csv` is given, a JSON run
//! manifest (`<stem>.manifest.json`) is written next to it.
//!
//! The historical flags-first form (`netperf --topology cube ...`) still
//! works and keeps its historical semantics: one fixed seed for every
//! load point (default `0x5EED`) and no source throttling.

use netperf::costmodel::{enumerate_designs, DesignBudget, DesignPoint};
use netperf::netsim::scenario::{
    default_load_grid, named, parse_threads, registry, sweep_threads, InjectionModel, RoutingKind,
    RunLength, Scenario, ScenarioBuilder, SeedMode, Throttle, TopologySpec,
};
use netperf::netsim::FaultPlan;
use netperf::telemetry::{trace, FlightRecorder, TelemetryConfig};
use netperf::traffic::Pattern;
use netstats::{Cell, Manifest, ManifestValue, Table};
use std::time::Instant;

fn main() {
    // Validate the thread-count override up front: the library helpers
    // silently ignore garbage, but an interactive user who typed
    // NETPERF_THREADS=0 deserves an error, not a silent default.
    if let Ok(v) = std::env::var("NETPERF_THREADS") {
        if let Err(e) = parse_threads(&v) {
            fail(&format!("bad NETPERF_THREADS: {e}"));
        }
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..], false),
        Some("sweep") => cmd_run(&args[1..], true),
        Some("design") => cmd_design(&args[1..]),
        None | Some("--help" | "-h") => usage(),
        // Flags-first invocation: the historical single-level CLI.
        Some(f) if f.starts_with("--") => legacy(&args),
        Some(other) => {
            eprintln!("error: unknown subcommand {other}");
            usage();
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: netperf <subcommand> [options]\n\
         \n\
         subcommands:\n\
         list                        print the named-scenario registry\n\
         run   [name] [options]      simulate one offered load\n\
         sweep [name] [options]      sweep a load grid (in parallel)\n\
         design [options]            rank design points under a pin budget:\n\
                                     --nodes <int> (default 256),\n\
                                     --pin-budget <int> (default 160),\n\
                                     --out <stem> (default results/design_report),\n\
                                     --quick; writes <stem>.{{csv,json}} + manifest\n\
         \n\
         scenario selection (instead of a registry name):\n\
         --topology <family>         cube|tree|tapered-tree|mesh|thc (or an alias)\n\
         --k <int>                   radix / arity (default 16)\n\
         --n <int>                   dimension / levels (default 2)\n\
         --taper <int>               up-link oversubscription ratio\n\
                                     (tapered-tree only; default 2)\n\
         --algo det|duato|adaptive   routing (default: the family's paper choice)\n\
         --vcs <int>                 virtual channels (default 4)\n\
         \n\
         scenario overrides (work with a name too):\n\
         --pattern <name>            uniform|complement|bitrev|transpose|shuffle|\n\
                                     butterfly|tornado|neighbor|hotspot (default uniform)\n\
         --injection <model>         bernoulli|periodic|onoff:<on>:<off> (default bernoulli)\n\
         --throttle auto|off|<int>   source throttling (default auto: the paper's rule)\n\
         --buffer <int>              lane depth in flits (default 4)\n\
         --packet-bytes <int>        packet size (default 64)\n\
         --cycles <int>              total cycles (default 20000)\n\
         --warmup <int>              warm-up cycles (default 2000)\n\
         --quick                     short run (1000/6000 cycles)\n\
         --seed <salt>               salt the derived per-run seeds (default 0)\n\
         --fixed-seed <int>          one fixed seed for every load point\n\
         --label <text>              override the display label (feeds the seed)\n\
         --faults <spec>             deterministic fault plan: comma-separated\n\
                                     links=<frac>, routers=<count>,\n\
                                     transient=<links>:<period>:<down>, seed=<int>,\n\
                                     or the literal none (default: healthy network)\n\
         \n\
         run/sweep control:\n\
         --load <frac>               offered load for `run` (default 0.5)\n\
         --grid a:b:step             load grid for `sweep` (default 0.05:1.0:0.05)\n\
         --shards <int>              domain-decompose each run into this many shards\n\
                                     (default 1 = serial; results are bit-identical\n\
                                     for every value; clamped to the router count)\n\
         --csv <path>                write results as CSV (+ JSON manifest)\n\
         --trace <stem>              record telemetry (alias --probe): writes\n\
                                     <stem>[.lNNN].trace.jsonl (event log),\n\
                                     <stem>[.lNNN].trace.json (Chrome about://tracing),\n\
                                     <stem>[.lNNN].breakdown.csv (latency decomposition),\n\
                                     <stem>[.lNNN].util.csv (channel utilization)\n\
         --probe-stride <n>          utilization sampling stride in cycles (default 100)\n\
         \n\
         environment:\n\
         NETPERF_THREADS             worker threads for sweeps and sharded runs\n\
                                     (positive integer; default: the machine's\n\
                                     available parallelism)\n\
         \n\
         The historical flags-first form (netperf --topology ... --load ...)\n\
         is still accepted, with its historical fixed-seed, unthrottled\n\
         semantics."
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// `cube|tree|mesh|...` — the registered family slugs, for error text.
fn family_slugs() -> String {
    netperf::topology::families()
        .iter()
        .map(|f| f.slug)
        .collect::<Vec<_>>()
        .join("|")
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_grid(spec: &str) -> Option<Vec<f64>> {
    let parts: Vec<f64> = spec
        .split(':')
        .map(|x| x.parse().ok())
        .collect::<Option<_>>()?;
    match parts.as_slice() {
        [a, b, step] if *step > 0.0 && b >= a => {
            let mut g = Vec::new();
            let mut x = *a;
            while x <= b + 1e-9 {
                g.push(x);
                x += step;
            }
            Some(g)
        }
        _ => None,
    }
}

fn parse_injection(spec: &str) -> Option<InjectionModel> {
    match spec {
        "bernoulli" => Some(InjectionModel::Bernoulli),
        "periodic" => Some(InjectionModel::Periodic),
        _ => {
            let rest = spec.strip_prefix("onoff:")?;
            let (on, off) = rest.split_once(':')?;
            Some(InjectionModel::OnOff {
                mean_on: on.parse().ok().filter(|v: &f64| *v > 0.0)?,
                mean_off: off.parse().ok().filter(|v: &f64| *v >= 0.0)?,
            })
        }
    }
}

fn cmd_list() {
    println!(
        "{:18} {:28} {:13} {:3} {:>6} {:>7} {:>6} summary",
        "name", "label", "routing", "vcs", "nodes", "router", "bisect"
    );
    for e in registry() {
        let s = e.scenario();
        let t = s.topology();
        println!(
            "{:18} {:28} {:13} {:3} {:>6} {:>7} {:>6} {}",
            e.name,
            s.label(),
            s.routing().name(),
            s.vcs(),
            t.num_nodes(),
            t.num_routers(),
            t.bisection_links()
                .map_or_else(|| "-".to_string(), |b| b.to_string()),
            e.summary
        );
    }
    println!("\npaper set: cube-det cube-duato tree-1vc tree-2vc tree-4vc");
}

/// Everything `run`/`sweep` parse: the scenario plus sweep control.
struct Request {
    scenario: Scenario,
    loads: Vec<f64>,
    csv: Option<String>,
    quick: bool,
    /// Artifact stem for telemetry output (`--trace`/`--probe`).
    trace: Option<String>,
}

fn parse_request(args: &[String], sweep: bool) -> Request {
    let mut it = args.iter();
    let mut name: Option<String> = None;
    // Builder axes (only used when no registry name is given).
    let mut family: Option<String> = None;
    let (mut k, mut n) = (16usize, 2usize);
    let mut taper: Option<usize> = None;
    let mut algo: Option<RoutingKind> = None;
    let mut vcs: Option<usize> = None;
    // Overrides that apply to both paths.
    let mut pattern: Option<Pattern> = None;
    let mut injection: Option<InjectionModel> = None;
    let mut throttle: Option<Throttle> = None;
    let mut buffer: Option<usize> = None;
    let mut packet_bytes: Option<usize> = None;
    let mut label: Option<String> = None;
    let mut seed: Option<SeedMode> = None;
    let mut run_length: Option<RunLength> = None;
    let (mut cycles, mut warmup): (Option<u32>, Option<u32>) = (None, None);
    let mut quick = false;
    // Sweep control.
    let mut load = 0.5f64;
    let mut grid: Option<Vec<f64>> = None;
    let mut csv: Option<String> = None;
    // Telemetry.
    let mut trace: Option<String> = None;
    let mut probe_stride: Option<u32> = None;
    // Intra-run sharding (execution detail: results are bit-identical).
    let mut shards: Option<usize> = None;
    // Fault plane. Outer None = flag absent; inner None = explicit
    // `--faults none` (strips a registry entry's plan).
    let mut faults: Option<Option<FaultPlan>> = None;

    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> &str {
            it.next()
                .unwrap_or_else(|| fail(&format!("missing value for {name}")))
        };
        match flag.as_str() {
            "--topology" => family = Some(val("--topology").to_string()),
            "--k" => k = val("--k").parse().unwrap_or_else(|_| fail("bad --k")),
            "--n" => n = val("--n").parse().unwrap_or_else(|_| fail("bad --n")),
            "--taper" => {
                taper = Some(
                    val("--taper")
                        .parse()
                        .ok()
                        .filter(|&t: &usize| t >= 1)
                        .unwrap_or_else(|| fail("bad --taper (want an integer >= 1)")),
                )
            }
            "--algo" => {
                let a = val("--algo");
                algo = Some(RoutingKind::parse(a).unwrap_or_else(|| {
                    fail(&format!("unknown algorithm {a} (det|duato|adaptive)"))
                }));
            }
            "--vcs" => vcs = Some(val("--vcs").parse().unwrap_or_else(|_| fail("bad --vcs"))),
            "--pattern" => {
                let p = val("--pattern");
                pattern = Some(
                    Pattern::parse(p).unwrap_or_else(|| fail(&format!("unknown pattern {p}"))),
                );
            }
            "--injection" => {
                let i = val("--injection");
                injection = Some(parse_injection(i).unwrap_or_else(|| {
                    fail(&format!(
                        "bad injection model {i} (bernoulli|periodic|onoff:<on>:<off>)"
                    ))
                }));
            }
            "--throttle" => {
                let t = val("--throttle");
                throttle = Some(match t {
                    "auto" => Throttle::Auto,
                    "off" => Throttle::Off,
                    other => Throttle::Limit(
                        other
                            .parse()
                            .unwrap_or_else(|_| fail("bad --throttle (auto|off|<int>)")),
                    ),
                });
            }
            "--buffer" => {
                buffer = Some(
                    val("--buffer")
                        .parse()
                        .unwrap_or_else(|_| fail("bad --buffer")),
                )
            }
            "--packet-bytes" => {
                packet_bytes = Some(
                    val("--packet-bytes")
                        .parse()
                        .unwrap_or_else(|_| fail("bad --packet-bytes")),
                )
            }
            "--label" => label = Some(val("--label").to_string()),
            "--seed" => {
                let s = val("--seed");
                seed = Some(SeedMode::Derived {
                    salt: parse_u64(s).unwrap_or_else(|| fail("bad --seed")),
                });
            }
            "--fixed-seed" => {
                let s = val("--fixed-seed");
                seed = Some(SeedMode::Fixed(
                    parse_u64(s).unwrap_or_else(|| fail("bad --fixed-seed")),
                ));
            }
            "--cycles" => {
                cycles = Some(
                    val("--cycles")
                        .parse()
                        .unwrap_or_else(|_| fail("bad --cycles")),
                )
            }
            "--warmup" => {
                warmup = Some(
                    val("--warmup")
                        .parse()
                        .unwrap_or_else(|_| fail("bad --warmup")),
                )
            }
            "--quick" => quick = true,
            "--faults" => {
                let spec = val("--faults");
                let plan = FaultPlan::parse(spec)
                    .unwrap_or_else(|e| fail(&format!("bad --faults spec: {e}")));
                faults = Some((!plan.is_empty()).then_some(plan));
            }
            "--load" => load = val("--load").parse().unwrap_or_else(|_| fail("bad --load")),
            "--sweep" | "--grid" => {
                let g = val("--grid");
                grid = Some(parse_grid(g).unwrap_or_else(|| fail("bad --grid (want a:b:step)")));
            }
            "--csv" => csv = Some(val("--csv").to_string()),
            "--trace" | "--probe" => trace = Some(val("--trace").to_string()),
            "--probe-stride" => {
                probe_stride = Some(
                    val("--probe-stride")
                        .parse()
                        .ok()
                        .filter(|&v: &u32| v >= 1)
                        .unwrap_or_else(|| fail("bad --probe-stride (want an integer >= 1)")),
                )
            }
            "--shards" => {
                shards = Some(
                    val("--shards")
                        .parse()
                        .ok()
                        .filter(|&v: &usize| v >= 1)
                        .unwrap_or_else(|| fail("bad --shards (want an integer >= 1)")),
                )
            }
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => fail(&format!("unknown flag {other}")),
            positional if name.is_none() => name = Some(positional.to_string()),
            other => fail(&format!("unexpected argument {other}")),
        }
    }

    if quick {
        run_length = Some(RunLength::quick());
    }
    if cycles.is_some() || warmup.is_some() {
        let base = run_length.unwrap_or_else(RunLength::paper);
        run_length = Some(RunLength {
            warmup: warmup.unwrap_or(base.warmup),
            total: cycles.unwrap_or(base.total),
        });
    }

    let scenario = if let Some(name) = &name {
        if family.is_some() || algo.is_some() || vcs.is_some() || taper.is_some() {
            fail("give either a registry name or --topology/--algo/--vcs flags, not both");
        }
        let mut s = named(name)
            .unwrap_or_else(|| fail(&format!("unknown scenario {name} (see `netperf list`)")));
        // Apply the overrides the axis accessors allow without
        // rebuilding: pattern (revalidated), run length, seed.
        if let Some(p) = pattern {
            s = s.with_pattern(p);
        }
        if let Some(len) = run_length {
            s = s.with_run_length(len);
        }
        if let Some(mode) = seed {
            s = s.with_seed(mode);
        }
        if injection.is_some()
            || throttle.is_some()
            || buffer.is_some()
            || packet_bytes.is_some()
            || label.is_some()
        {
            fail("registry scenarios fix injection/throttle/buffer/packet size; use explicit --topology flags to change them");
        }
        s
    } else {
        let family = family.unwrap_or_else(|| fail("need a registry name or --topology"));
        let mut topology = TopologySpec::parse(&family, k, n)
            .unwrap_or_else(|| fail(&format!("unknown topology {family} ({})", family_slugs())));
        if let Some(t) = taper {
            topology = topology.with_taper(t).unwrap_or_else(|| {
                fail(&format!(
                    "--taper applies to tapered trees, not the {family}"
                ))
            });
        }
        let mut b = ScenarioBuilder::new().topology(topology);
        if let Some(r) = algo {
            b = b.routing(r);
        }
        if let Some(v) = vcs {
            b = b.vcs(v);
        }
        if let Some(p) = pattern {
            b = b.pattern(p);
        }
        if let Some(i) = injection {
            b = b.injection(i);
        }
        if let Some(t) = throttle {
            b = b.throttle(t);
        }
        if let Some(d) = buffer {
            b = b.buffer_depth(d);
        }
        if let Some(bytes) = packet_bytes {
            b = b.packet_bytes(bytes);
        }
        if let Some(l) = label {
            b = b.label(l);
        }
        if let Some(len) = run_length {
            b = b.run_length(len);
        }
        if let Some(mode) = seed {
            b = b.seed(mode);
        }
        b.build().unwrap_or_else(|e| fail(&e.to_string()))
    };

    let scenario = match faults {
        Some(plan) => scenario
            .with_faults(plan)
            .unwrap_or_else(|e| fail(&e.to_string())),
        None => scenario,
    };

    if probe_stride.is_some() && trace.is_none() {
        fail("--probe-stride requires --trace");
    }
    let scenario = if trace.is_some() {
        scenario.with_telemetry(TelemetryConfig {
            stride: probe_stride.unwrap_or(100),
            record_events: true,
        })
    } else {
        scenario
    };

    let scenario = match shards {
        Some(n) => scenario.with_shards(n),
        None => scenario,
    };

    let loads = if sweep {
        grid.unwrap_or_else(default_load_grid)
    } else {
        vec![load]
    };
    Request {
        scenario,
        loads,
        csv,
        quick,
        trace,
    }
}

fn cmd_run(args: &[String], sweep: bool) {
    let req = parse_request(args, sweep);
    let s = &req.scenario;
    let norm = s.normalization();
    println!(
        "{} | {} | {} | {} flits/packet | capacity {:.3} flits/node/cycle | clock {:.2} ns",
        s.topology().describe(),
        s.routing().name(),
        s.pattern().name(),
        (s.packet_bytes() / norm.flit_bytes()).max(1),
        norm.capacity_flits_per_cycle(),
        norm.timing().clock_ns(),
    );

    let faulted = s.faults().is_some();
    if let Some(plan) = s.faults() {
        println!(
            "faults: {} (digest 0x{:016x})",
            plan.spec_string(),
            plan.digest()
        );
    }

    let start = Instant::now();
    // Traced runs go through the serial probed path (the recorder is a
    // per-run accumulator); untraced runs keep the parallel sweep. A
    // wedged run (possible under aggressive fault plans) surfaces as a
    // one-line structured error, not a panic backtrace.
    let (outcomes, recorders) = if req.trace.is_some() {
        let mut outs = Vec::with_capacity(req.loads.len());
        let mut recs = Vec::with_capacity(req.loads.len());
        for &l in &req.loads {
            let (o, r) = s
                .try_simulate_traced(l)
                .unwrap_or_else(|e| fail(&e.to_string()));
            outs.push(o);
            recs.push(r);
        }
        (outs, Some(recs))
    } else {
        (
            s.try_sweep_outcomes(&req.loads)
                .unwrap_or_else(|e| fail(&e.to_string())),
            None,
        )
    };
    let wall = start.elapsed().as_secs_f64();

    let mut table = results_table(faulted);
    let (mut created, mut delivered) = (0u64, 0u64);
    let (mut dropped, mut unroutable) = (0u64, 0u64);
    for (&load, out) in req.loads.iter().zip(&outcomes) {
        created += out.created_packets;
        delivered += out.delivered_packets;
        dropped += out.dropped_packets;
        unroutable += out.unroutable_packets;
        push_outcome(&mut table, load, out, faulted);
        let degraded = if faulted {
            format!(
                " ({} dropped, {} unroutable)",
                out.dropped_packets, out.unroutable_packets
            )
        } else {
            String::new()
        };
        println!(
            "load {:>5.2}: accepted {:>6.3} of capacity, latency {:>7.1} cycles (p99 {:>6.0}), {} packets{degraded}",
            load,
            out.accepted_fraction,
            out.mean_latency_cycles(),
            out.latency_hist.quantile(0.99).unwrap_or(f64::NAN),
            out.delivered_packets
        );
    }

    if let Some(recs) = &recorders {
        let stem = req.trace.as_deref().unwrap();
        for (&load, rec) in req.loads.iter().zip(recs) {
            write_trace_artifacts(stem, load, req.loads.len() > 1, rec);
        }
    }

    if let Some(path) = &req.csv {
        netstats::write_csv(&table, path).expect("write csv");
        let manifest = cli_manifest(
            &req,
            wall,
            outcomes.len(),
            [created, delivered, dropped, unroutable],
            recorders.as_deref(),
        );
        let mpath = manifest_sibling(path);
        netstats::write_manifest(&manifest, &mpath).expect("write manifest");
        eprintln!("wrote {path}");
        eprintln!("wrote {mpath}");
    }
}

/// Write the four telemetry artifacts of one traced load point:
/// JSONL event log, Chrome trace, latency-decomposition CSV and
/// channel-utilization CSV. Multi-load runs tag each file with the
/// load percentage (`stem.l040.trace.jsonl`).
fn write_trace_artifacts(stem: &str, load: f64, tagged: bool, rec: &FlightRecorder) {
    let tag = if tagged {
        format!(".l{:03}", (load * 100.0).round() as u32)
    } else {
        String::new()
    };
    let write = |suffix: &str, contents: String| {
        let path = format!("{stem}{tag}{suffix}");
        if let Some(parent) = std::path::Path::new(&path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("create trace dir");
            }
        }
        std::fs::write(&path, contents).unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
        eprintln!("wrote {path}");
    };
    write(".trace.jsonl", trace::events_jsonl(rec.events()));
    write(".trace.json", trace::chrome_trace(rec));
    write(".breakdown.csv", rec.breakdown_table().to_csv());
    write(".util.csv", rec.utilization_series_table(8).to_csv());
    if let Some(sum) = rec.breakdown_summary() {
        println!(
            "load {:>5.2}: latency decomposition (mean cycles over {} packets): \
             src_queue {:.1} + routing {:.1} + blocked {:.1} + transfer {:.1} = {:.1} \
             ({:.0}% blocked)",
            load,
            sum.packets,
            sum.mean_src_queue,
            sum.mean_routing,
            sum.mean_blocked,
            sum.mean_transfer,
            sum.mean_total,
            sum.blocked_share() * 100.0,
        );
    }
}

/// Result columns; the fault columns appear only on faulted runs so
/// healthy CSV output keeps its historical shape.
fn results_table(faulted: bool) -> Table {
    let mut cols = vec![
        "offered_fraction",
        "generated_fraction",
        "accepted_fraction",
        "latency_cycles",
        "latency_p99_cycles",
        "delivered_packets",
        "backlog_packets",
    ];
    if faulted {
        cols.extend(["dropped_packets", "unroutable_packets"]);
    }
    Table::with_columns(cols)
}

fn push_outcome(
    table: &mut Table,
    load: f64,
    out: &netperf::netsim::sim::SimOutcome,
    faulted: bool,
) {
    let mut row = vec![
        Cell::Num(load),
        Cell::Num(out.generated_fraction),
        Cell::Num(out.accepted_fraction),
        Cell::Num(out.mean_latency_cycles()),
        Cell::Num(out.latency_hist.quantile(0.99).unwrap_or(f64::NAN)),
        Cell::Num(out.delivered_packets as f64),
        Cell::Num(out.backlog_packets as f64),
    ];
    if faulted {
        row.push(Cell::Num(out.dropped_packets as f64));
        row.push(Cell::Num(out.unroutable_packets as f64));
    }
    table.push_row(row);
}

/// The run manifest written next to `--csv` output (same schema as the
/// bench binaries'). Untraced runs keep the historical
/// `netperf-run-manifest/1` bytes; traced runs advertise
/// `netperf-run-manifest/2` and append a `telemetry` object; faulted
/// runs advertise `netperf-run-manifest/3` and add drop accounting
/// (the scenario object then carries a `faults` description).
fn cli_manifest(
    req: &Request,
    wall: f64,
    sims: usize,
    [created, delivered, dropped, unroutable]: [u64; 4],
    recorders: Option<&[FlightRecorder]>,
) -> Manifest {
    let faulted = req.scenario.faults().is_some();
    let mut m = Manifest::new();
    m.push(
        "schema",
        netstats::export::run_manifest_schema_tag(recorders.is_some(), faulted),
    );
    m.push("generator", "netperf-cli");
    m.push("artifact", req.csv.as_deref().unwrap_or(""));
    m.push("quick", req.quick);
    m.push(
        "loads",
        ManifestValue::List(req.loads.iter().map(|&l| ManifestValue::Num(l)).collect()),
    );
    let mut engine = Manifest::new();
    for (feature, enabled) in netperf::netsim::engine_features() {
        engine.push(feature, enabled);
    }
    m.push("engine", engine);
    m.push(
        "scenarios",
        ManifestValue::List(vec![req.scenario.manifest().into()]),
    );
    m.push("wall_clock_secs", wall);
    let mut c = Manifest::new();
    c.push("simulations", sims as f64);
    c.push("created_packets", created as f64);
    c.push("delivered_packets", delivered as f64);
    if faulted {
        c.push("dropped_packets", dropped as f64);
        c.push("unroutable_packets", unroutable as f64);
    }
    m.push("counters", ManifestValue::Object(c));
    if let Some(recs) = recorders {
        let cfg = req.scenario.telemetry().unwrap_or_default();
        let mut t = Manifest::new();
        t.push("stride", cfg.stride as f64);
        t.push("record_events", cfg.record_events);
        if let Some(stem) = &req.trace {
            t.push("trace_stem", stem.as_str());
        }
        t.push(
            "runs",
            ManifestValue::List(recs.iter().map(|r| r.manifest().into()).collect()),
        );
        m.push("telemetry", t);
    }
    m
}

fn manifest_sibling(csv_path: &str) -> String {
    match csv_path.strip_suffix(".csv") {
        Some(stem) => format!("{stem}.manifest.json"),
        None => format!("{csv_path}.manifest.json"),
    }
}

// ---------------------------------------------------------------------
// The design-space optimizer: enumerate, price, screen, simulate, rank.
// ---------------------------------------------------------------------

/// One simulated design point: the enumerated/priced point plus the
/// measured saturation throughput (feasible points only) and the final
/// rank among feasible points (1 = best).
struct RankedPoint {
    point: DesignPoint,
    measured_saturation_fraction: Option<f64>,
    measured_bits_per_ns: Option<f64>,
    rank: Option<usize>,
}

/// The scenario a design point names: the family's default
/// routing/vcs choice from the enumeration, at the given run length.
fn design_scenario(p: &DesignPoint, run_length: RunLength) -> Scenario {
    let spec = TopologySpec::parse(p.family, p.k, p.n)
        .unwrap_or_else(|| fail(&format!("design point {} names an unknown family", p.id())));
    let spec = if spec.taper() == p.taper {
        spec
    } else {
        spec.with_taper(p.taper)
            .expect("only tapered families enumerate taper > 1")
    };
    let routing = RoutingKind::parse(p.routing).expect("design points use registered routings");
    Scenario::builder()
        .topology(spec)
        .routing(routing)
        .vcs(p.vcs)
        .run_length(run_length)
        .build()
        .unwrap_or_else(|e| fail(&format!("design point {}: {e}", p.id())))
}

fn cmd_design(args: &[String]) {
    let mut nodes = 256usize;
    let mut pin_budget = 160usize;
    let mut quick = false;
    let mut out_stem = "results/design_report".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> &str {
            it.next()
                .unwrap_or_else(|| fail(&format!("missing value for {name}")))
        };
        match flag.as_str() {
            "--nodes" => {
                nodes = val("--nodes")
                    .parse()
                    .ok()
                    .filter(|&v: &usize| v >= 2)
                    .unwrap_or_else(|| fail("bad --nodes (want an integer >= 2)"))
            }
            "--pin-budget" => {
                pin_budget = val("--pin-budget")
                    .parse()
                    .ok()
                    .filter(|&v: &usize| v >= 1)
                    .unwrap_or_else(|| fail("bad --pin-budget (want an integer >= 1)"))
            }
            "--out" => out_stem = val("--out").to_string(),
            "--quick" => quick = true,
            "--help" | "-h" => usage(),
            other => fail(&format!("unknown flag {other}")),
        }
    }

    let budget = DesignBudget { nodes, pin_budget };
    let points = enumerate_designs(&budget);
    if points.is_empty() {
        fail(&format!(
            "no registered family has an exact {nodes}-node shape"
        ));
    }
    let feasible = points.iter().filter(|p| p.feasible).count();
    // Short sharded simulations on the feasible survivors, at offered
    // load 1.0: the ranking metric is sustained saturation throughput
    // in absolute bits/ns, the y-axis ceiling of the paper's Figure 7.
    let run_length = if quick {
        RunLength {
            warmup: 200,
            total: 1500,
        }
    } else {
        RunLength::quick()
    };
    let threads = sweep_threads();
    println!(
        "design space: {} nodes, {} data pins/router: {} candidates, {} feasible \
         (simulating each at saturation, {} cycles, {} threads)",
        nodes,
        pin_budget,
        points.len(),
        feasible,
        run_length.total,
        threads
    );

    let start = Instant::now();
    let mut ranked: Vec<RankedPoint> = points
        .into_iter()
        .map(|point| {
            if !point.feasible {
                return RankedPoint {
                    point,
                    measured_saturation_fraction: None,
                    measured_bits_per_ns: None,
                    rank: None,
                };
            }
            let s = design_scenario(&point, run_length);
            let shards = threads.min(point.routers).max(1);
            let out = s
                .try_simulate_sharded(1.0, shards, threads)
                .unwrap_or_else(|e| fail(&format!("design point {}: {e}", point.id())));
            let bits = out.accepted_fraction * point.capacity_bits_per_ns;
            println!(
                "  {:42} pins {:>4}  clock {:>5.2} ns  sustained {:.3} of capacity = {:>6.2} bits/ns",
                point.id(),
                point.pins_per_router,
                point.clock_ns,
                out.accepted_fraction,
                bits
            );
            RankedPoint {
                point,
                measured_saturation_fraction: Some(out.accepted_fraction),
                measured_bits_per_ns: Some(bits),
                rank: None,
            }
        })
        .collect();
    let wall = start.elapsed().as_secs_f64();

    // Rank: feasible by measured throughput (descending, id as the
    // deterministic tie-break), then the infeasible points by how far
    // they overshoot the budget (the nearest misses first).
    ranked.sort_by(|a, b| {
        let key = |r: &RankedPoint| r.measured_bits_per_ns.unwrap_or(f64::NEG_INFINITY);
        key(b)
            .partial_cmp(&key(a))
            .unwrap()
            .then_with(|| a.point.pins_per_router.cmp(&b.point.pins_per_router))
            .then_with(|| a.point.id().cmp(&b.point.id()))
    });
    for (i, r) in ranked
        .iter_mut()
        .take_while(|r| r.point.feasible)
        .enumerate()
    {
        r.rank = Some(i + 1);
    }
    if let Some(best) = ranked.first().filter(|r| r.rank.is_some()) {
        println!(
            "best design: {} at {:.2} bits/ns sustained",
            best.point.id(),
            best.measured_bits_per_ns.unwrap()
        );
    } else {
        println!("no feasible design under {pin_budget} pins/router");
    }

    let csv_path = format!("{out_stem}.csv");
    netstats::write_csv(&design_table(&ranked), &csv_path).expect("write csv");
    eprintln!("wrote {csv_path}");
    let json_path = format!("{out_stem}.json");
    netstats::write_manifest(
        &design_report(&budget, quick, run_length, &ranked),
        &json_path,
    )
    .expect("write report");
    eprintln!("wrote {json_path}");
    let mpath = manifest_sibling(&csv_path);
    netstats::write_manifest(
        &design_manifest(&budget, quick, run_length, threads, wall, &ranked),
        &mpath,
    )
    .expect("write manifest");
    eprintln!("wrote {mpath}");
}

fn opt_num(v: Option<f64>) -> Cell {
    v.map_or(Cell::Text(String::new()), Cell::Num)
}

fn design_table(ranked: &[RankedPoint]) -> Table {
    let mut table = Table::with_columns([
        "rank",
        "id",
        "family",
        "k",
        "n",
        "taper",
        "vcs",
        "routing",
        "routers",
        "ports_per_router",
        "flit_bytes",
        "pins_per_router",
        "feasible",
        "bisection_links",
        "capacity_flits_per_cycle",
        "clock_ns",
        "clock_bottleneck",
        "capacity_bits_per_ns",
        "analytic_saturation_fraction",
        "predicted_bits_per_ns",
        "measured_saturation_fraction",
        "measured_bits_per_ns",
    ]);
    for r in ranked {
        let p = &r.point;
        table.push_row(vec![
            opt_num(r.rank.map(|x| x as f64)),
            Cell::Text(p.id()),
            Cell::Text(p.family.to_string()),
            Cell::Num(p.k as f64),
            Cell::Num(p.n as f64),
            Cell::Num(p.taper as f64),
            Cell::Num(p.vcs as f64),
            Cell::Text(p.routing.to_string()),
            Cell::Num(p.routers as f64),
            Cell::Num(p.ports_per_router as f64),
            Cell::Num(p.flit_bytes as f64),
            Cell::Num(p.pins_per_router as f64),
            Cell::Num(p.feasible as u8 as f64),
            Cell::Num(p.bisection_links as f64),
            Cell::Num(p.capacity_flits_per_cycle),
            Cell::Num(p.clock_ns),
            Cell::Text(p.clock_bottleneck.to_string()),
            Cell::Num(p.capacity_bits_per_ns),
            opt_num(p.analytic_saturation_fraction),
            opt_num(p.predicted_bits_per_ns),
            opt_num(r.measured_saturation_fraction),
            opt_num(r.measured_bits_per_ns),
        ]);
    }
    table
}

fn point_manifest(r: &RankedPoint) -> Manifest {
    let p = &r.point;
    let mut m = Manifest::new();
    if let Some(rank) = r.rank {
        m.push("rank", rank as f64);
    }
    m.push("id", p.id());
    m.push("family", p.family);
    m.push("k", p.k as f64);
    m.push("n", p.n as f64);
    m.push("taper", p.taper as f64);
    m.push("vcs", p.vcs as f64);
    m.push("routing", p.routing);
    m.push("routers", p.routers as f64);
    m.push("ports_per_router", p.ports_per_router as f64);
    m.push("flit_bytes", p.flit_bytes as f64);
    m.push("pins_per_router", p.pins_per_router as f64);
    m.push("feasible", p.feasible);
    m.push("bisection_links", p.bisection_links as f64);
    m.push("capacity_flits_per_cycle", p.capacity_flits_per_cycle);
    m.push("clock_ns", p.clock_ns);
    m.push("clock_bottleneck", p.clock_bottleneck);
    m.push("capacity_bits_per_ns", p.capacity_bits_per_ns);
    if let Some(f) = p.analytic_saturation_fraction {
        m.push("analytic_saturation_fraction", f);
        m.push("predicted_bits_per_ns", p.predicted_bits_per_ns.unwrap());
    }
    if let Some(f) = r.measured_saturation_fraction {
        m.push("measured_saturation_fraction", f);
        m.push("measured_bits_per_ns", r.measured_bits_per_ns.unwrap());
    }
    m
}

/// The machine-readable report (`design_report.json`), validated by
/// `scripts/design_report.schema.json` in the verify pipeline.
fn design_report(
    budget: &DesignBudget,
    quick: bool,
    run_length: RunLength,
    ranked: &[RankedPoint],
) -> Manifest {
    let mut m = Manifest::new();
    m.push("schema", "netperf-design-report/1");
    m.push("generator", "netperf-cli");
    let mut b = Manifest::new();
    b.push("nodes", budget.nodes as f64);
    b.push("pin_budget", budget.pin_budget as f64);
    m.push("budget", b);
    m.push("quick", quick);
    let mut rl = Manifest::new();
    rl.push("warmup", run_length.warmup as f64);
    rl.push("total", run_length.total as f64);
    m.push("run_length", rl);
    m.push("offered_fraction", 1.0);
    m.push("candidates", ranked.len() as f64);
    m.push(
        "feasible",
        ranked.iter().filter(|r| r.point.feasible).count() as f64,
    );
    m.push(
        "points",
        ManifestValue::List(ranked.iter().map(|r| point_manifest(r).into()).collect()),
    );
    m
}

/// The provenance manifest sibling (`design_report.manifest.json`).
fn design_manifest(
    budget: &DesignBudget,
    quick: bool,
    run_length: RunLength,
    threads: usize,
    wall: f64,
    ranked: &[RankedPoint],
) -> Manifest {
    let mut m = Manifest::new();
    m.push("schema", "netperf-design-manifest/1");
    m.push("generator", "netperf-cli");
    m.push("artifact", "design_report");
    let mut b = Manifest::new();
    b.push("nodes", budget.nodes as f64);
    b.push("pin_budget", budget.pin_budget as f64);
    m.push("budget", b);
    m.push("quick", quick);
    let mut rl = Manifest::new();
    rl.push("warmup", run_length.warmup as f64);
    rl.push("total", run_length.total as f64);
    m.push("run_length", rl);
    m.push("threads", threads as f64);
    m.push(
        "available_parallelism",
        std::thread::available_parallelism().map_or(0.0, |p| p.get() as f64),
    );
    let mut engine = Manifest::new();
    for (feature, enabled) in netperf::netsim::engine_features() {
        engine.push(feature, enabled);
    }
    m.push("engine", engine);
    m.push("wall_clock_secs", wall);
    let mut c = Manifest::new();
    c.push("candidates", ranked.len() as f64);
    c.push(
        "feasible",
        ranked.iter().filter(|r| r.point.feasible).count() as f64,
    );
    c.push(
        "simulated",
        ranked
            .iter()
            .filter(|r| r.measured_bits_per_ns.is_some())
            .count() as f64,
    );
    m.push("counters", ManifestValue::Object(c));
    m
}

// ---------------------------------------------------------------------
// The historical flags-first CLI, now a thin veneer over the builder.
// ---------------------------------------------------------------------

fn legacy(args: &[String]) {
    let mut it = args.iter();
    let mut family = "cube".to_string();
    let (mut k, mut n) = (16usize, 2usize);
    let mut algo = "duato".to_string();
    let mut vcs = 4usize;
    let mut taper: Option<usize> = None;
    let mut pattern = Pattern::Uniform;
    let mut load = 0.5f64;
    let mut sweep: Option<Vec<f64>> = None;
    let (mut cycles, mut warmup) = (20_000u32, 2_000u32);
    let mut seed = 0x5EEDu64;
    let mut buffer = 4usize;
    let mut packet_bytes = 64usize;
    let mut csv: Option<String> = None;

    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> &str {
            it.next()
                .unwrap_or_else(|| fail(&format!("missing value for {name}")))
        };
        match flag.as_str() {
            "--topology" => family = val("--topology").to_string(),
            "--k" => k = val("--k").parse().unwrap_or_else(|_| fail("bad --k")),
            "--n" => n = val("--n").parse().unwrap_or_else(|_| fail("bad --n")),
            "--algo" => algo = val("--algo").to_string(),
            "--vcs" => vcs = val("--vcs").parse().unwrap_or_else(|_| fail("bad --vcs")),
            "--taper" => {
                taper = Some(
                    val("--taper")
                        .parse()
                        .ok()
                        .filter(|t| *t >= 1)
                        .unwrap_or_else(|| fail("bad --taper (want an integer >= 1)")),
                )
            }
            "--pattern" => {
                let p = val("--pattern");
                pattern =
                    Pattern::parse(p).unwrap_or_else(|| fail(&format!("unknown pattern {p}")));
            }
            "--load" => load = val("--load").parse().unwrap_or_else(|_| fail("bad --load")),
            "--sweep" => {
                let g = val("--sweep");
                sweep = Some(parse_grid(g).unwrap_or_else(|| fail("bad --sweep (want a:b:step)")));
            }
            "--cycles" => {
                cycles = val("--cycles")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --cycles"))
            }
            "--warmup" => {
                warmup = val("--warmup")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --warmup"))
            }
            "--seed" => seed = parse_u64(val("--seed")).unwrap_or_else(|| fail("bad --seed")),
            "--buffer" => {
                buffer = val("--buffer")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --buffer"))
            }
            "--packet-bytes" => {
                packet_bytes = val("--packet-bytes")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --packet-bytes"))
            }
            "--csv" => csv = Some(val("--csv").to_string()),
            "--help" | "-h" => usage(),
            other => fail(&format!("unknown flag {other}")),
        }
    }

    // The historical CLI accepted `mesh + duato` as a synonym for the
    // adaptive mesh router and silently raised the VC count to its
    // 2-lane minimum.
    let routing = match (family.as_str(), algo.as_str()) {
        ("mesh", "duato") => RoutingKind::Adaptive,
        _ => RoutingKind::parse(&algo)
            .unwrap_or_else(|| fail(&format!("unknown algorithm {algo} (det|duato|adaptive)"))),
    };
    if family == "mesh" && routing == RoutingKind::Adaptive {
        vcs = vcs.max(2);
    }
    let mut topology = TopologySpec::parse(&family, k, n)
        .unwrap_or_else(|| fail(&format!("unknown topology {family} ({})", family_slugs())));
    if let Some(t) = taper {
        topology = topology.with_taper(t).unwrap_or_else(|| {
            fail(&format!(
                "--taper applies to tapered trees, not the {family}"
            ))
        });
    }
    let scenario = ScenarioBuilder::new()
        .topology(topology)
        .routing(routing)
        .vcs(vcs)
        .pattern(pattern)
        .run_length(RunLength {
            warmup,
            total: cycles,
        })
        .seed(SeedMode::Fixed(seed))
        .buffer_depth(buffer)
        .packet_bytes(packet_bytes)
        .throttle(Throttle::Off)
        .build()
        .unwrap_or_else(|e| fail(&e.to_string()));

    let norm = scenario.normalization();
    let algo_obj = scenario.build_algorithm();
    println!(
        "{} | {} | {} | {} flits/packet | capacity {:.3} flits/node/cycle",
        algo_obj.topology().label(),
        algo_obj.name(),
        pattern.name(),
        (packet_bytes / norm.flit_bytes()).max(1),
        norm.capacity_flits_per_cycle(),
    );

    let loads = sweep.unwrap_or_else(|| vec![load]);
    let mut table = results_table(false);
    for &l in &loads {
        let out = scenario.simulate(l);
        println!(
            "load {:>5.2}: accepted {:>6.3} of capacity, latency {:>7.1} cycles (p99 {:>6.0}), {} packets",
            l,
            out.accepted_fraction,
            out.mean_latency_cycles(),
            out.latency_hist.quantile(0.99).unwrap_or(f64::NAN),
            out.delivered_packets
        );
        push_outcome(&mut table, l, &out, false);
    }
    if let Some(path) = &csv {
        netstats::write_csv(&table, path).expect("write csv");
        eprintln!("wrote {path}");
    }
}
