//! Beyond the paper's 256 nodes: the normalization family `k1 = n1`,
//! `N = k1^k1`.
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```
//!
//! Section 5 derives that a k-ary n-tree and a k-ary n-cube have the
//! same node and router count exactly when `k1 = n1` and
//! `k2 = k1^(k1/2)`, `n2 = 2`... more precisely `k1^k1 = k2^n2` and
//! `k1 * k1^(k1-1) = k2^n2`. The paper evaluates the `k1 = 4` member
//! (256 nodes). This example also runs the smaller `k1 = 2` member
//! (4 nodes is degenerate) and a mid-size non-member pair with equal
//! node counts (64 nodes) to show how the comparison trends with scale,
//! using shorter runs.

use netperf::prelude::*;

fn run_pair(tree: TreeParams, cube: CubeParams, vcs: usize, len: RunLength) {
    let tree_spec = ExperimentSpec::tree_adaptive(tree, vcs);
    let cube_spec = ExperimentSpec::cube_duato(cube);
    let tn = tree_spec.normalization();
    let cn = cube_spec.normalization();
    println!(
        "\n{}-ary {}-tree ({} vc) vs {}-ary {}-cube (Duato): {} nodes each",
        tree.k,
        tree.n,
        vcs,
        cube.k,
        cube.n,
        KAryNTree::new(tree.k, tree.n).num_nodes(),
    );
    for f in [0.4, 0.8] {
        let t = simulate_load(&tree_spec, Pattern::Uniform, f, len);
        let c = simulate_load(&cube_spec, Pattern::Uniform, f, len);
        println!(
            "  offered {:>3.0}%: tree {:>6.0} bits/ns ({:>4.1}% acc) | cube {:>6.0} bits/ns ({:>4.1}% acc)",
            f * 100.0,
            tn.fraction_to_bits_per_ns(t.accepted_fraction),
            100.0 * t.accepted_fraction,
            cn.fraction_to_bits_per_ns(c.accepted_fraction),
            100.0 * c.accepted_fraction,
        );
    }
}

fn main() {
    let len = RunLength::paper();

    // The paper's pair: 256 nodes, 256 routers each.
    run_pair(TreeParams::paper(), CubeParams::paper(), 4, len);

    // A 64-node pair (same node count, router counts differ: 48 vs 64 —
    // the normalization family has no member here, which is exactly why
    // the paper picked 256).
    run_pair(TreeParams { k: 4, n: 3 }, CubeParams { k: 8, n: 2 }, 4, len);

    // A 16-node pair for completeness.
    run_pair(TreeParams { k: 4, n: 2 }, CubeParams { k: 4, n: 2 }, 2, len);

    println!("\nThe cube's absolute advantage under uniform traffic persists across");
    println!("scales; it grows with the node count because the tree's wire-delay");
    println!("penalty (medium wires) is a fixed multiplicative clock factor while");
    println!("its bisection advantage goes unused by uniform traffic.");
}
