//! Shared-memory style traffic: requests and replies.
//!
//! ```sh
//! cargo run --release --example shared_memory
//! ```
//!
//! The paper's introduction is a tour of shared-memory machines — DASH
//! with its separate request and reply cubes, DDM and KSR fat-tree COMA
//! designs — and its uniform benchmark is chosen as "representative of
//! well-balanced shared memory computations". This example closes the
//! loop that the open-loop benchmark abstracts away: every delivered
//! request triggers a reply. Two effects follow, both visible below:
//!
//! 1. the network carries twice the flits per request, so saturation in
//!    *request rate* arrives at roughly half the open-loop point;
//! 2. round-trip time adds the reply's queueing at the *remote* node,
//!    so remote-read latency degrades faster than one-way latency.

use netperf::netsim::engine::Engine;
use netperf::netsim::flit::NEVER;
use netperf::prelude::*;
use netperf::traffic::{Bernoulli, TrafficGen};

fn main() {
    let spec = ExperimentSpec::cube_duato(CubeParams::paper());
    let norm = spec.normalization();

    println!("16-ary 2-cube, Duato routing, uniform requests with replies\n");
    println!(
        "{:>12} {:>14} {:>14} {:>16} {:>14}",
        "request rate", "one-way (open)", "one-way (r+r)", "round trip", "backlog"
    );

    for fraction in [0.1, 0.2, 0.3, 0.4, 0.45] {
        // Open-loop reference.
        let open = simulate_load(&spec, Pattern::Uniform, fraction, RunLength::paper());

        // Closed-loop request-reply run at the same request rate.
        let algo = spec.build_algorithm();
        let rate = norm.packet_rate(fraction);
        let pattern = TrafficGen::new(Pattern::Uniform, 256);
        let mut eng = Engine::new(
            algo.as_ref(),
            4,
            norm.flits_per_packet() as u16,
            pattern,
            &move |_| Box::new(Bernoulli::new(rate)),
            0xD5,
        );
        eng.set_request_reply(true);
        eng.run(20_000);

        // One-way latency over all delivered packets; round trip =
        // reply delivery - request creation (includes the remote node's
        // injection queueing, which the one-way metric hides).
        let mut one_way = netstats::Accumulator::new();
        let mut round_trip = netstats::Accumulator::new();
        for p in eng.packets() {
            if p.injected < 2_000 || p.delivered == NEVER {
                continue;
            }
            one_way.push((p.delivered - p.injected) as f64);
            if p.is_reply() {
                let req = &eng.packets()[p.in_reply_to as usize];
                round_trip.push((p.delivered - req.created) as f64);
            }
        }
        println!(
            "{:>11.0}% {:>11.0} ns {:>11.0} ns {:>13.0} ns {:>14}",
            fraction * 100.0,
            norm.cycles_to_ns(open.mean_latency_cycles()),
            norm.cycles_to_ns(one_way.mean()),
            norm.cycles_to_ns(round_trip.mean()),
            eng.source_queue_len(),
        );
    }

    println!("\nAt a 45% request rate the network carries ~90% of capacity in");
    println!("requests plus replies: the closed loop saturates at half the");
    println!("open-loop point, and round-trip latency runs away first — the");
    println!("reason DASH dedicated separate networks to requests and replies.");
}
