//! Spatial congestion maps — reproducing Section 9's geometric claims.
//!
//! ```sh
//! cargo run --release --example congestion_map
//! ```
//!
//! * Transpose: "the destination of each packet is a reflection of the
//!   source along the diagonal. This causes a continuous area of
//!   congestion along this diagonal and on the opposite corners of the
//!   logically flattened torus."
//! * Bit reversal: "there are 16 nodes that have a palindrome bit
//!   string and do not inject any packet into the network. They
//!   generate some underloaded areas that are located along or near the
//!   two main diagonals according to a symmetric layout."
//!
//! The engine counts flits per directed channel; we aggregate per
//! router and print the 16 x 16 grid as an ASCII heat map.

use netperf::netsim::engine::Engine;
use netperf::prelude::*;
use netperf::traffic::{Bernoulli, TrafficGen};

fn heat_map(pattern: Pattern) -> Vec<u64> {
    let spec = ExperimentSpec::cube_duato(CubeParams::paper());
    let norm = spec.normalization();
    let algo = spec.build_algorithm();
    let rate = norm.packet_rate(0.5);
    let gen = TrafficGen::new(pattern, 256);
    let mut eng = Engine::new(
        algo.as_ref(),
        4,
        norm.flits_per_packet() as u16,
        gen,
        &move |_| Box::new(Bernoulli::new(rate)),
        0xC0FFEE,
    );
    eng.run(20_000);
    eng.router_forwarded_flits()
}

fn print_grid(loads: &[u64]) {
    let max = *loads.iter().max().unwrap() as f64;
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    println!(
        "    {}",
        "0123456789abcdef"
            .chars()
            .map(|c| format!("{c} "))
            .collect::<String>()
    );
    for y in 0..16 {
        print!("{y:>3} ");
        for x in 0..16 {
            // Router (x, y): node index x + 16 y (dimension 0 = x).
            let load = loads[x + 16 * y] as f64 / max;
            let idx = ((load * (shades.len() - 1) as f64).round() as usize).min(shades.len() - 1);
            print!("{} ", shades[idx]);
        }
        println!();
    }
}

fn main() {
    println!("Forwarded-flit heat maps on the 16-ary 2-cube (Duato, 50% load)");
    println!("(rows = dimension-1 coordinate, columns = dimension-0 coordinate)\n");

    for pattern in [Pattern::Transpose, Pattern::BitReversal, Pattern::Uniform] {
        println!("== {} ==", pattern.title());
        let loads = heat_map(pattern);
        print_grid(&loads);

        // Quantify the claims.
        let diag: Vec<u64> = (0..16).map(|i| loads[i + 16 * i]).collect();
        let anti: Vec<u64> = (0..16).map(|i| loads[(15 - i) + 16 * i]).collect();
        let total: u64 = loads.iter().sum();
        let mean = total as f64 / 256.0;
        let diag_mean = diag.iter().sum::<u64>() as f64 / 16.0;
        let anti_mean = anti.iter().sum::<u64>() as f64 / 16.0;
        println!(
            "main diagonal load: {:+.0}% vs grid mean; anti-diagonal: {:+.0}%\n",
            100.0 * (diag_mean / mean - 1.0),
            100.0 * (anti_mean / mean - 1.0),
        );
    }

    println!("Transpose piles traffic on the main diagonal (sources and their");
    println!("reflections meet there); bit reversal leaves the palindromic rows");
    println!("quiet; uniform is flat — all three exactly as Section 9 describes.");
}
