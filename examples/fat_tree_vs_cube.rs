//! The paper's headline experiment in miniature: compare all five
//! router configurations under uniform and transpose traffic at a few
//! offered loads, in the absolute units of Figure 7 (bits/ns and ns).
//!
//! ```sh
//! cargo run --release --example fat_tree_vs_cube
//! ```
//!
//! Expect the ordering of Section 10: under uniform traffic the cube
//! wins decisively (wider flits, shorter wires, faster clock); under the
//! non-uniform permutations the adaptive cube and the multi-VC trees
//! group together, with the deterministic cube and the 1-VC tree far
//! behind.

use netperf::prelude::*;

fn main() {
    let specs = ExperimentSpec::paper_five();
    let loads = [0.3, 0.6, 0.9];

    for pattern in [Pattern::Uniform, Pattern::Transpose] {
        println!("\n=== {} ===", pattern.title());
        println!(
            "{:24} {:>22} {:>22} {:>12}",
            "configuration", "offered (bits/ns)", "accepted (bits/ns)", "latency"
        );
        for spec in &specs {
            let norm = spec.normalization();
            for &f in &loads {
                let out = simulate_load(spec, pattern, f, RunLength::paper());
                let lat_ns = norm.cycles_to_ns(out.mean_latency_cycles());
                println!(
                    "{:24} {:>17.0} ({:>2.0}%) {:>17.0} ({:>2.0}%) {:>9.2} us",
                    spec.label(),
                    norm.fraction_to_bits_per_ns(f),
                    f * 100.0,
                    norm.fraction_to_bits_per_ns(out.accepted_fraction),
                    out.accepted_fraction * 100.0,
                    lat_ns / 1000.0,
                );
            }
        }
    }

    println!("\nPaper, Section 11: \"the bi-dimensional cube outperforms the quaternary");
    println!("fat-tree under uniform traffic, both in terms of network throughput and");
    println!("latency\"; with transpose \"the throughput with two and four virtual channels");
    println!("on the fat-tree is tantamount to the adaptive algorithm on the cube\".");
}
