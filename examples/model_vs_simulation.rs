//! "Theoretical models of the interconnection network often prove
//! overly simplistic and are not able to capture important performance
//! aspects" — Section 1 of the paper. This example quantifies that
//! claim: an Agarwal-style M/D/1 contention model against the
//! flit-level simulation, on both 256-node networks.
//!
//! ```sh
//! cargo run --release --example model_vs_simulation
//! ```
//!
//! Expect close agreement at low load (the zero-load pipeline is
//! modelled exactly), growing divergence from ~50% load, and a
//! qualitatively wrong saturation prediction: the closed forms say both
//! networks saturate at ~100% of capacity; the simulation says 36–85%
//! depending on routing and flow control.

use netperf::analytic::{CubeModel, TreeModel};
use netperf::prelude::*;

fn main() {
    let loads = [0.1, 0.3, 0.5, 0.7, 0.9];

    println!("16-ary 2-cube, Duato adaptive routing, uniform traffic");
    println!(
        "{:>8} {:>16} {:>16} {:>8}",
        "load", "model (cycles)", "sim (cycles)", "error"
    );
    let model = CubeModel::new(16, 2, 16);
    let spec = ExperimentSpec::cube_duato(CubeParams::paper());
    for &f in &loads {
        let predicted = model.predicted_latency(f);
        let sim = simulate_load(&spec, Pattern::Uniform, f, RunLength::paper());
        let measured = sim.mean_latency_cycles();
        println!(
            "{:>7.0}% {:>16.1} {:>16.1} {:>7.0}%",
            f * 100.0,
            predicted,
            measured,
            100.0 * (predicted - measured) / measured
        );
    }
    println!(
        "model says saturation at {:.0}% of capacity; simulation saturates at ~80%",
        100.0 * model.saturation_fraction()
    );

    println!("\n4-ary 4-tree, adaptive routing with 2 VCs, uniform traffic");
    println!(
        "{:>8} {:>16} {:>16} {:>8}",
        "load", "model (cycles)", "sim (cycles)", "error"
    );
    let model = TreeModel::new(4, 4, 32);
    let spec = ExperimentSpec::tree_adaptive(TreeParams::paper(), 2);
    for &f in &loads {
        let predicted = model.predicted_latency(f);
        let sim = simulate_load(&spec, Pattern::Uniform, f, RunLength::paper());
        let measured = sim.mean_latency_cycles();
        println!(
            "{:>7.0}% {:>16.1} {:>16.1} {:>7.0}%",
            f * 100.0,
            predicted,
            measured,
            100.0 * (predicted - measured) / measured
        );
    }
    println!(
        "model says saturation at {:.0}% of capacity; simulation saturates at ~55%",
        100.0 * model.saturation_fraction()
    );

    println!("\nThe models capture the pipeline and first-order contention but miss");
    println!("virtual-channel multiplexing, head-of-line blocking and backpressure —");
    println!("which is precisely why the paper builds a detailed simulator.");
}
