//! Quickstart: simulate the paper's 16-ary 2-cube under uniform traffic
//! at 40% of capacity and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use netperf::prelude::*;

fn main() {
    // One of the paper's five configurations: the 256-node bi-dimensional
    // cube with Duato's minimal adaptive routing (2 adaptive + 2 escape
    // virtual channels, 4-byte flits).
    let spec = ExperimentSpec::cube_duato(CubeParams::paper());

    // Physical normalization: flit width, capacity, and the router clock
    // derived from Chien's cost model.
    let norm = spec.normalization();
    println!("network:   {}", spec.label());
    println!(
        "flit:      {} bytes ({} flits per 64-byte packet)",
        norm.flit_bytes(),
        norm.flits_per_packet()
    );
    println!(
        "capacity:  {} flits/node/cycle",
        norm.capacity_flits_per_cycle()
    );
    println!(
        "clock:     {:.2} ns ({})",
        norm.timing().clock_ns(),
        norm.timing().bottleneck()
    );

    // Simulate at 40% of capacity with the paper's protocol
    // (2000 warm-up cycles, measurement until cycle 20000).
    let outcome = simulate_load(&spec, Pattern::Uniform, 0.40, RunLength::paper());

    println!(
        "\noffered:   {:.1}% of capacity",
        100.0 * outcome.offered_fraction
    );
    println!(
        "accepted:  {:.1}% of capacity ({:.0} bits/ns aggregate)",
        100.0 * outcome.accepted_fraction,
        norm.fraction_to_bits_per_ns(outcome.accepted_fraction)
    );
    println!(
        "latency:   {:.1} cycles = {:.0} ns (min {:.0}, max {:.0} cycles)",
        outcome.mean_latency_cycles(),
        norm.cycles_to_ns(outcome.mean_latency_cycles()),
        outcome.latency.min(),
        outcome.latency.max()
    );
    println!(
        "packets:   {} delivered in the measurement window",
        outcome.delivered_packets
    );
    assert!(
        !outcome.is_saturated(0.05),
        "40% load is well below saturation"
    );
    println!("\nBelow saturation, accepted tracks offered — as Section 6 of the paper notes.");
}
