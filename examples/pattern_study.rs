//! Why is the complement pattern "congestion-free" on a fat-tree?
//!
//! ```sh
//! cargo run --release --example pattern_study
//! ```
//!
//! Section 8 of the paper observes that the complement permutation
//! saturates the 4-ary 4-tree at ~95% of capacity with *any* number of
//! virtual channels, while uniform, transpose and bit-reversal saturate
//! far lower. This example connects that observation to structure:
//!
//! 1. the static *descent overload* of each pattern (how much demand a
//!    destination subtree places on its incoming links, relative to
//!    their number);
//! 2. the mean distance of each permutation (Equation 5);
//! 3. the dynamic saturation measured by the simulator.

use netperf::prelude::*;
use netperf::traffic::TrafficGen;

fn main() {
    let tree = KAryNTree::new(4, 4);
    let n = tree.num_nodes();

    println!("pattern      injecting  mean-dist  descent-overload");
    for pattern in [
        Pattern::Complement,
        Pattern::Transpose,
        Pattern::BitReversal,
        Pattern::Shuffle,
        Pattern::Butterfly,
    ] {
        let g = TrafficGen::new(pattern, n);
        let perm = g.permutation().expect("deterministic pattern");
        let dist = tree.mean_permutation_distance(&perm);
        let overload = tree.descent_overload(&perm);
        println!(
            "{:12} {:>8.1}% {:>10.3} {:>17.2}",
            pattern.name(),
            100.0 * g.injecting_fraction(),
            dist,
            overload,
        );
    }
    // A non-permutation for contrast: everyone hammers node 0.
    let hotspot = |_: NodeId| NodeId(0);
    println!(
        "{:12} {:>8.1}% {:>10.3} {:>17.2}",
        "hotspot(all)",
        100.0 * 255.0 / 256.0,
        tree.mean_permutation_distance(hotspot),
        tree.descent_overload(hotspot),
    );
    println!(
        "\nEquation (5) check: d_m = {:.3} for transpose/bit-reversal (paper: 7.125)",
        KAryNTree::eq5_mean_distance(4, 4)
    );
    println!("Every permutation passes the static feasibility test (overload <= 1):");
    println!("a fat-tree is rearrangeable, so some conflict-free descent assignment");
    println!("always exists. What distinguishes the complement is that the *greedy,");
    println!("local* least-loaded ascent actually finds it — measured below — while");
    println!("transpose and bit-reversal leave the distributed algorithm stuck well");
    println!("below the bound (their packets concentrate NCAs at the root level and");
    println!("collide during the deterministic descent).\n");

    // Dynamic confirmation: drive the tree at 90% of capacity.
    let spec = ExperimentSpec::tree_adaptive(TreeParams::paper(), 1);
    println!("4-ary 4-tree, 1 virtual channel, offered = 90% of capacity:");
    for pattern in [
        Pattern::Complement,
        Pattern::Transpose,
        Pattern::BitReversal,
    ] {
        let out = simulate_load(&spec, pattern, 0.9, RunLength::paper());
        println!(
            "  {:12} accepted {:>5.1}%  latency {:>6.1} cycles",
            pattern.name(),
            100.0 * out.accepted_fraction,
            out.mean_latency_cycles()
        );
    }
    println!("\nComplement sails through where the bisection-heavy permutations");
    println!("collapse to ~35% — exactly Figure 5 of the paper.");
}
