//! Machine-checking the deadlock-freedom arguments.
//!
//! ```sh
//! cargo run --release --example deadlock_analysis
//! ```
//!
//! The paper leans on three classical results: Dally & Seitz datelines
//! for dimension-order routing, Duato's theory for the adaptive cube
//! algorithm, and up*/down* level monotonicity for the fat-tree. This
//! example *executes* each routing function over every reachable state,
//! builds the channel dependency graph, and looks for cycles — and then
//! shows that the checker has teeth by collapsing the two virtual
//! networks of the deterministic algorithm into one, which closes the
//! ring cycle the datelines exist to break.

use netperf::prelude::*;
use netperf::routing::{build_cdg, ChannelDependencyGraph, LaneId};

fn report(name: &str, g: &ChannelDependencyGraph) {
    match g.find_cycle() {
        None => println!(
            "{name:55} {:>7} deps  ACYCLIC (deadlock-free)",
            g.num_edges()
        ),
        Some(cycle) => {
            println!(
                "{name:55} {:>7} deps  CYCLE of length {}",
                g.num_edges(),
                cycle.len() - 1
            )
        }
    }
}

fn main() {
    println!("Channel dependency graphs (built by exhaustive replay):\n");

    // Dimension-order routing with two virtual networks.
    for (k, n) in [(6usize, 2usize), (4, 3)] {
        let algo = CubeDeterministic::new(KAryNCube::new(k, n));
        let g = build_cdg(&algo, |_| true);
        report(&format!("deterministic, {k}-ary {n}-cube, full CDG"), &g);
    }

    // Fat-tree adaptive routing: levels only ever decrease then increase.
    for (k, n, vcs) in [(4usize, 2usize, 2usize), (2, 4, 1), (3, 3, 4)] {
        let algo = TreeAdaptive::new(KAryNTree::new(k, n), vcs);
        let g = build_cdg(&algo, |_| true);
        report(
            &format!("tree adaptive, {k}-ary {n}-tree, {vcs} vc, full CDG"),
            &g,
        );
    }

    // Duato: the full CDG is cyclic by design; the escape sub-CDG
    // (with indirect dependencies through the adaptive lanes) must not be.
    let algo = CubeDuato::new(KAryNCube::new(6, 2));
    let full = build_cdg(&algo, |_| true);
    report("Duato, 6-ary 2-cube, full CDG (cycles expected!)", &full);
    let escape = build_cdg(&algo, |l: LaneId| algo.is_escape_vc(l.vc as usize));
    report(
        "Duato, 6-ary 2-cube, escape sub-CDG + indirect deps",
        &escape,
    );

    // Negative control: collapse the two virtual networks of the
    // deterministic algorithm — the wrap-around cycle reappears.
    let algo = CubeDeterministic::new(KAryNCube::new(6, 2));
    let g = build_cdg(&algo, |_| true);
    let mut merged = ChannelDependencyGraph::default();
    let project = |l: LaneId| LaneId {
        router: l.router,
        port: l.port,
        vc: 0,
    };
    for from in g.lanes() {
        for to in g.successors(from) {
            merged.add_edge(project(from), project(to));
        }
    }
    report(
        "deterministic with virtual networks COLLAPSED (broken!)",
        &merged,
    );

    println!("\nEvery production configuration is acyclic; the deliberately broken");
    println!("variant is not. The simulator additionally carries a runtime deadlock");
    println!("watchdog, which has never fired in any test or reproduction run.");
}
