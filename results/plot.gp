set datafile separator ','
set key autotitle columnhead
set grid
set term pngcairo size 1400,900
set output 'fig5_uniform.png'
set multiplot layout 1,2 title 'fig5 uniform'
set xlabel 'offered (fraction of capacity)'; set ylabel 'accepted (fraction)'
plot 'fig5_uniform.csv' using 1:2 with linespoints, 'fig5_uniform.csv' using 1:4 with linespoints, 'fig5_uniform.csv' using 1:6 with linespoints
set xlabel 'offered (fraction of capacity)'; set ylabel 'latency (cycles)'
plot 'fig5_uniform.csv' using 1:3 with linespoints, 'fig5_uniform.csv' using 1:5 with linespoints, 'fig5_uniform.csv' using 1:7 with linespoints
unset multiplot
set output 'fig5_complement.png'
set multiplot layout 1,2 title 'fig5 complement'
set xlabel 'offered (fraction of capacity)'; set ylabel 'accepted (fraction)'
plot 'fig5_complement.csv' using 1:2 with linespoints, 'fig5_complement.csv' using 1:4 with linespoints, 'fig5_complement.csv' using 1:6 with linespoints
set xlabel 'offered (fraction of capacity)'; set ylabel 'latency (cycles)'
plot 'fig5_complement.csv' using 1:3 with linespoints, 'fig5_complement.csv' using 1:5 with linespoints, 'fig5_complement.csv' using 1:7 with linespoints
unset multiplot
set output 'fig5_transpose.png'
set multiplot layout 1,2 title 'fig5 transpose'
set xlabel 'offered (fraction of capacity)'; set ylabel 'accepted (fraction)'
plot 'fig5_transpose.csv' using 1:2 with linespoints, 'fig5_transpose.csv' using 1:4 with linespoints, 'fig5_transpose.csv' using 1:6 with linespoints
set xlabel 'offered (fraction of capacity)'; set ylabel 'latency (cycles)'
plot 'fig5_transpose.csv' using 1:3 with linespoints, 'fig5_transpose.csv' using 1:5 with linespoints, 'fig5_transpose.csv' using 1:7 with linespoints
unset multiplot
set output 'fig5_bitrev.png'
set multiplot layout 1,2 title 'fig5 bitrev'
set xlabel 'offered (fraction of capacity)'; set ylabel 'accepted (fraction)'
plot 'fig5_bitrev.csv' using 1:2 with linespoints, 'fig5_bitrev.csv' using 1:4 with linespoints, 'fig5_bitrev.csv' using 1:6 with linespoints
set xlabel 'offered (fraction of capacity)'; set ylabel 'latency (cycles)'
plot 'fig5_bitrev.csv' using 1:3 with linespoints, 'fig5_bitrev.csv' using 1:5 with linespoints, 'fig5_bitrev.csv' using 1:7 with linespoints
unset multiplot
set output 'fig6_uniform.png'
set multiplot layout 1,2 title 'fig6 uniform'
set xlabel 'offered (fraction of capacity)'; set ylabel 'accepted (fraction)'
plot 'fig6_uniform.csv' using 1:2 with linespoints, 'fig6_uniform.csv' using 1:4 with linespoints
set xlabel 'offered (fraction of capacity)'; set ylabel 'latency (cycles)'
plot 'fig6_uniform.csv' using 1:3 with linespoints, 'fig6_uniform.csv' using 1:5 with linespoints
unset multiplot
set output 'fig6_complement.png'
set multiplot layout 1,2 title 'fig6 complement'
set xlabel 'offered (fraction of capacity)'; set ylabel 'accepted (fraction)'
plot 'fig6_complement.csv' using 1:2 with linespoints, 'fig6_complement.csv' using 1:4 with linespoints
set xlabel 'offered (fraction of capacity)'; set ylabel 'latency (cycles)'
plot 'fig6_complement.csv' using 1:3 with linespoints, 'fig6_complement.csv' using 1:5 with linespoints
unset multiplot
set output 'fig6_transpose.png'
set multiplot layout 1,2 title 'fig6 transpose'
set xlabel 'offered (fraction of capacity)'; set ylabel 'accepted (fraction)'
plot 'fig6_transpose.csv' using 1:2 with linespoints, 'fig6_transpose.csv' using 1:4 with linespoints
set xlabel 'offered (fraction of capacity)'; set ylabel 'latency (cycles)'
plot 'fig6_transpose.csv' using 1:3 with linespoints, 'fig6_transpose.csv' using 1:5 with linespoints
unset multiplot
set output 'fig6_bitrev.png'
set multiplot layout 1,2 title 'fig6 bitrev'
set xlabel 'offered (fraction of capacity)'; set ylabel 'accepted (fraction)'
plot 'fig6_bitrev.csv' using 1:2 with linespoints, 'fig6_bitrev.csv' using 1:4 with linespoints
set xlabel 'offered (fraction of capacity)'; set ylabel 'latency (cycles)'
plot 'fig6_bitrev.csv' using 1:3 with linespoints, 'fig6_bitrev.csv' using 1:5 with linespoints
unset multiplot
set output 'fig7_uniform.png'
set multiplot layout 1,2 title 'fig7 uniform'
set xlabel 'offered (bits/ns)'; set ylabel 'accepted (bits/ns)'
plot 'fig7_uniform.csv' using 2:3 with linespoints, 'fig7_uniform.csv' using 5:6 with linespoints, 'fig7_uniform.csv' using 8:9 with linespoints, 'fig7_uniform.csv' using 11:12 with linespoints, 'fig7_uniform.csv' using 14:15 with linespoints
set xlabel 'offered (bits/ns)'; set ylabel 'latency (ns)'
plot 'fig7_uniform.csv' using 2:4 with linespoints, 'fig7_uniform.csv' using 5:7 with linespoints, 'fig7_uniform.csv' using 8:10 with linespoints, 'fig7_uniform.csv' using 11:13 with linespoints, 'fig7_uniform.csv' using 14:16 with linespoints
unset multiplot
set output 'fig7_complement.png'
set multiplot layout 1,2 title 'fig7 complement'
set xlabel 'offered (bits/ns)'; set ylabel 'accepted (bits/ns)'
plot 'fig7_complement.csv' using 2:3 with linespoints, 'fig7_complement.csv' using 5:6 with linespoints, 'fig7_complement.csv' using 8:9 with linespoints, 'fig7_complement.csv' using 11:12 with linespoints, 'fig7_complement.csv' using 14:15 with linespoints
set xlabel 'offered (bits/ns)'; set ylabel 'latency (ns)'
plot 'fig7_complement.csv' using 2:4 with linespoints, 'fig7_complement.csv' using 5:7 with linespoints, 'fig7_complement.csv' using 8:10 with linespoints, 'fig7_complement.csv' using 11:13 with linespoints, 'fig7_complement.csv' using 14:16 with linespoints
unset multiplot
set output 'fig7_transpose.png'
set multiplot layout 1,2 title 'fig7 transpose'
set xlabel 'offered (bits/ns)'; set ylabel 'accepted (bits/ns)'
plot 'fig7_transpose.csv' using 2:3 with linespoints, 'fig7_transpose.csv' using 5:6 with linespoints, 'fig7_transpose.csv' using 8:9 with linespoints, 'fig7_transpose.csv' using 11:12 with linespoints, 'fig7_transpose.csv' using 14:15 with linespoints
set xlabel 'offered (bits/ns)'; set ylabel 'latency (ns)'
plot 'fig7_transpose.csv' using 2:4 with linespoints, 'fig7_transpose.csv' using 5:7 with linespoints, 'fig7_transpose.csv' using 8:10 with linespoints, 'fig7_transpose.csv' using 11:13 with linespoints, 'fig7_transpose.csv' using 14:16 with linespoints
unset multiplot
set output 'fig7_bitrev.png'
set multiplot layout 1,2 title 'fig7 bitrev'
set xlabel 'offered (bits/ns)'; set ylabel 'accepted (bits/ns)'
plot 'fig7_bitrev.csv' using 2:3 with linespoints, 'fig7_bitrev.csv' using 5:6 with linespoints, 'fig7_bitrev.csv' using 8:9 with linespoints, 'fig7_bitrev.csv' using 11:12 with linespoints, 'fig7_bitrev.csv' using 14:15 with linespoints
set xlabel 'offered (bits/ns)'; set ylabel 'latency (ns)'
plot 'fig7_bitrev.csv' using 2:4 with linespoints, 'fig7_bitrev.csv' using 5:7 with linespoints, 'fig7_bitrev.csv' using 8:10 with linespoints, 'fig7_bitrev.csv' using 11:13 with linespoints, 'fig7_bitrev.csv' using 14:16 with linespoints
unset multiplot
